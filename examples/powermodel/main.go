// Power-model exploration (paper §5.3): print the Table 2 CAM
// latency/energy grid, then sweep load-queue sizes and search rates to
// find where value-based replay becomes the more energy-efficient
// memory-ordering mechanism.
//
//	go run ./examples/powermodel
package main

import (
	"fmt"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/energy"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

func main() {
	fmt.Print(energy.FormatTable2())
	cam := energy.DefaultCAMModel()
	fmt.Printf("\nAt 5 GHz a cycle is 0.2 ns — a 32-entry 3/2 CAM search takes %.2f ns.\n",
		cam.Lookup(32, energy.PortConfig{Read: 3, Write: 2}).LatencyNS)
	fmt.Println("Conventional load queues cannot be searched in one cycle (paper §2.2).")

	// Measure real replay and search rates on a workload.
	work, _ := workload.ByName("tpcb")
	opt := system.Options{Cores: 1, Seed: 3, DMAInterval: 4000, DMABurst: 2}

	rep := system.New(config.Replay(core.NoRecentSnoop), work, opt)
	rep.Run(30_000, opt)
	rep.ResetStats()
	r := rep.Run(60_000, opt)

	base := system.New(config.Baseline(), work, opt)
	base.Run(30_000, opt)
	base.ResetStats()
	b := base.Run(60_000, opt)

	replays := r.Pipe.ReplayAccesses
	committed := r.Pipe.Committed
	searches := b.Counters.Get("lq.searches")
	fmt.Printf("\nmeasured on %s: %.4f replays/instr, %.4f LQ searches/instr\n",
		work.Name,
		float64(replays)/float64(committed),
		float64(searches)/float64(b.Pipe.Committed))

	fmt.Println("\nΔEnergy = (Ecache+Ecmp)·replays − Eldqsearch·searches + overhead")
	fmt.Printf("%-10s %14s %18s %10s\n", "LQ size", "search nJ", "ΔEnergy nJ/Kinstr", "winner")
	for _, size := range []int{16, 32, 64, 128, 256} {
		pm := energy.DefaultPowerModel(size, energy.PortConfig{Read: 3, Write: 2})
		delta := pm.Delta(replays, searches, committed) / float64(committed) * 1000
		winner := "replay"
		if delta > 0 {
			winner = "CAM LQ"
		}
		fmt.Printf("%-10d %14.3f %18.2f %10s\n", size, pm.ELQSearch, delta, winner)
	}
	pm := energy.DefaultPowerModel(128, energy.PortConfig{Read: 3, Write: 2})
	fmt.Printf("\nbreak-even replay rate at the measured search rate: %.4f replays/instr\n",
		pm.BreakEvenReplayRate(float64(searches)/float64(b.Pipe.Committed)))
	fmt.Printf("(the machine replays %.4f/instr — far below break-even, as the paper predicts)\n",
		float64(replays)/float64(committed))
}
