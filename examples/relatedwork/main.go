// Related-work comparison (paper §1): run the augmentative load/store
// queue alternatives the paper's introduction surveys — Bloom-filtered
// load-queue searches (Sethumadhavan et al.), the hierarchical store
// queue (Akkary et al.), the Alpha-style insulated and Power4-style
// hybrid queues — alongside value-based replay, on the same workloads.
//
//	go run ./examples/relatedwork
package main

import (
	"os"

	"vbmo/internal/experiments"
)

func main() {
	cfg := experiments.QuickConfig()
	cfg.UniInstr = 30000
	cfg.Workloads = []string{"gzip", "gcc", "vortex", "tpcb", "apsi"}
	experiments.RelatedWork(os.Stdout, cfg)
}
