module vbmo

go 1.22
