// Package vbmo's root benchmark harness: one benchmark per paper table
// and figure (DESIGN.md §4), plus ablation benchmarks for the design
// choices DESIGN.md §5 calls out. Each benchmark regenerates its
// experiment at a reduced budget and reports the figure's headline
// quantity as a custom metric, so `go test -bench=. -benchmem` walks the
// whole evaluation.
package main

import (
	"io"
	"testing"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/energy"
	"vbmo/internal/experiments"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

// benchRun runs the §5.1 matrix, failing the benchmark on an
// infrastructure error (impossible without a checkpoint journal).
func benchRun(b *testing.B, cfg experiments.Config, machines []string) *experiments.Matrix {
	b.Helper()
	m, err := experiments.Run(cfg, machines)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchCfg returns the benchmark-scale experiment configuration.
func benchCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.UniInstr = 12000
	cfg.MPInstr = 2000
	cfg.MPCores = 4
	cfg.Workloads = []string{"gzip", "vortex", "apsi", "tpcb", "radiosity", "ocean"}
	return cfg
}

// BenchmarkTable1 renders the Table 1 survey.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if energy.FormatTable1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2CAMModel evaluates the Table 2 CAM model over its grid.
func BenchmarkTable2CAMModel(b *testing.B) {
	m := energy.DefaultCAMModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, n := range energy.Table2Entries {
			for _, p := range energy.Table2Ports {
				pt := m.Lookup(n, p)
				sink += pt.LatencyNS + pt.EnergyNJ
			}
		}
	}
	latErr, enErr := m.ModelError()
	b.ReportMetric(latErr*100, "lat-err-%")
	b.ReportMetric(enErr*100, "energy-err-%")
	_ = sink
}

// BenchmarkFigure5 runs the §5.1 performance matrix and reports the
// best filter's IPC relative to baseline.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		m := benchRun(b, cfg, []string{"baseline", "no-recent-snoop"})
		experiments.Figure5(io.Discard, m)
		var rel, n float64
		for _, w := range cfg.Workloads {
			base := m.Get("baseline", w)
			rep := m.Get("no-recent-snoop", w)
			if base != nil && rep != nil && base.IPC.Mean() > 0 {
				rel += rep.IPC.Mean() / base.IPC.Mean()
				n++
			}
		}
		b.ReportMetric(rel/n, "relIPC")
	}
}

// BenchmarkFigure6 reports replay bandwidth overhead and replays per
// committed instruction for the no-recent-snoop configuration.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		m := benchRun(b, cfg, []string{"baseline", "no-recent-snoop"})
		experiments.Figure6(io.Discard, m)
		var rep, com float64
		for _, w := range cfg.Workloads {
			if pt := m.Get("no-recent-snoop", w); pt != nil {
				rep += pt.Replays.Mean()
				com += pt.Committed.Mean()
			}
		}
		b.ReportMetric(rep/com, "replays/instr")
	}
}

// BenchmarkFigure7 reports baseline average reorder-buffer occupancy.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		m := benchRun(b, cfg, []string{"baseline", "replay-all"})
		experiments.Figure7(io.Discard, m)
		var occ, n float64
		for _, w := range cfg.Workloads {
			if pt := m.Get("replay-all", w); pt != nil {
				occ += pt.ROBOccupancy.Mean()
				n++
			}
		}
		b.ReportMetric(occ/n, "ROBavg")
	}
}

// BenchmarkFigure8 reports the replay machine's speedup over a
// 16-entry associative load queue.
func BenchmarkFigure8(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		m := benchRun(b, cfg, []string{"no-recent-snoop", "baseline-lq16"})
		var rel, n float64
		for _, w := range cfg.Workloads {
			rep := m.Get("no-recent-snoop", w)
			b16 := m.Get("baseline-lq16", w)
			if rep != nil && b16 != nil && b16.IPC.Mean() > 0 {
				rel += rep.IPC.Mean() / b16.IPC.Mean()
				n++
			}
		}
		b.ReportMetric(rel/n, "speedup-vs-lq16")
	}
}

// BenchmarkPowerModel reports the §5.3 ΔEnergy per committed
// instruction for measured replay/search rates.
func BenchmarkPowerModel(b *testing.B) {
	pm := energy.DefaultPowerModel(128, energy.PortConfig{Read: 3, Write: 2})
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += pm.Delta(2000, 100000, 1_000_000)
	}
	b.ReportMetric(pm.Delta(2000, 100000, 1_000_000)/1e6, "nJ/instr")
	_ = sink
}

// runIPC measures one machine's IPC on one workload (for ablations).
func runIPC(mc config.Machine, work string, instr uint64) float64 {
	w, _ := workload.ByName(work)
	return runIPCWork(mc, w, instr)
}

func runIPCWork(mc config.Machine, w workload.Params, instr uint64) float64 {
	opt := system.Options{Cores: 1, Seed: 42, DMAInterval: 4000, DMABurst: 2}
	s := system.New(mc, w, opt)
	s.Run(instr/2, opt)
	s.ResetStats()
	res := s.Run(instr, opt)
	return res.IPC
}

// pressured is a deliberately cache-perfect, load-heavy workload that
// saturates the shared commit-stage port under replay-all — the regime
// where the back-end design choices matter. The catalog workloads run
// below this pressure (which itself confirms the paper's §3 claim that
// one replay per cycle is adequate).
func pressured() workload.Params {
	return workload.Params{
		Name: "pressured", Suite: "synthetic",
		LoadFrac: 0.38, StoreFrac: 0.14, BranchFrac: 0.06,
		WorkingSet: 16 << 10, Locality: 24, Stream: 0.95,
		RandomBranches: 0.05, BranchBias: 0.8, LoopTrip: 32,
		SilentStores: 0.3, StoreAddrLate: 0.01,
	}
}

// BenchmarkAblationBackendPorts compares the paper's single shared
// commit-stage port against a hypothetical second replay port
// (DESIGN.md §5 ablation 1) by widening ReplayPerCycle.
func BenchmarkAblationBackendPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := config.Replay(core.ReplayAll)
		two := config.Replay(core.ReplayAll)
		two.ReplayPerCycle = 2
		ipc1 := runIPCWork(one, pressured(), 20000)
		ipc2 := runIPCWork(two, pressured(), 20000)
		b.ReportMetric(ipc2/ipc1, "2port-speedup")
	}
}

// BenchmarkAblationReplayWindow varies how deep before commit the
// replay stage reaches (DESIGN.md §5 ablation 2).
func BenchmarkAblationReplayWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		narrow := config.Replay(core.ReplayAll)
		narrow.ReplayWindow = 2
		wide := config.Replay(core.ReplayAll)
		wide.ReplayWindow = 32
		n := runIPCWork(narrow, pressured(), 20000)
		w := runIPCWork(wide, pressured(), 20000)
		b.ReportMetric(w/n, "wide-window-speedup")
	}
}

// BenchmarkAblationSquashIncludesLoad compares committing the
// mismatching load with its replay value against refetching it
// (forward-progress rule 3 variant; DESIGN.md §5 ablation 3).
func BenchmarkAblationSquashIncludesLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		commit := config.Replay(core.ReplayAll)
		refetch := config.Replay(core.ReplayAll)
		refetch.SquashIncludesLoad = true
		c := runIPCWork(commit, pressured(), 20000)
		r := runIPCWork(refetch, pressured(), 20000)
		b.ReportMetric(c/r, "commit-vs-refetch")
	}
}

// BenchmarkAblationPredictors compares the replay machine's simple
// dependence predictor against grafting the baseline's store-set
// predictor onto it (DESIGN.md §5 ablation 5).
func BenchmarkAblationPredictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		simple := config.Replay(core.NoRecentSnoop)
		ssets := config.Replay(core.NoRecentSnoop)
		ssets.UseStoreSets = true
		s := runIPC(simple, "apsi", 12000)
		t := runIPC(ssets, "apsi", 12000)
		b.ReportMetric(t/s, "storeset-vs-simple")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (committed instructions per second of host time).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("gzip")
	opt := system.Options{Cores: 1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := system.New(config.Baseline(), w, opt)
		res := s.Run(20000, opt)
		if res.Pipe.Committed < 20000 {
			b.Fatal("under-committed")
		}
	}
	b.ReportMetric(20000, "instrs/op")
}

// BenchmarkRelatedWorkDesigns compares the paper's replay machine
// against the augmentative related-work designs its introduction
// surveys: the Bloom-filtered load queue (Sethumadhavan et al.) and the
// hierarchical store queue (Akkary et al.). The metric is each
// design's IPC relative to the plain baseline.
func BenchmarkRelatedWorkDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runIPC(config.Baseline(), "vortex", 12000)
		bloom := runIPC(config.BloomBaseline(), "vortex", 12000)
		hier := runIPC(config.HierSQBaseline(), "vortex", 12000)
		replay := runIPC(config.Replay(core.NoRecentSnoop), "vortex", 12000)
		b.ReportMetric(bloom/base, "bloom-rel")
		b.ReportMetric(hier/base, "hiersq-rel")
		b.ReportMetric(replay/base, "replay-rel")
	}
}

// BenchmarkValuePrediction measures replay-verified load-value
// prediction (paper §1's Martin et al. discussion): IPC relative to
// the same machine without prediction, plus predictor accuracy.
func BenchmarkValuePrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := runIPC(config.Replay(core.NoRecentSnoop), "gzip", 20000)
		vp := runIPC(config.ReplayVP(core.NoRecentSnoop), "gzip", 20000)
		b.ReportMetric(vp/plain, "vp-speedup")
	}
}
