// Command vbrsim runs one workload on one machine configuration and
// prints its statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

func main() {
	var (
		workName = flag.String("workload", "gzip", "workload name (see -list)")
		machine  = flag.String("machine", "baseline", "baseline | replay-all | no-reorder | no-recent-miss | no-recent-snoop | baseline-lq16 | baseline-lq32 | baseline-insulated | baseline-hybrid | baseline-bloom | baseline-hiersq | replay-vpred")
		cores    = flag.Int("cores", 1, "number of processors")
		insts    = flag.Uint64("n", 100000, "instructions to commit per core")
		seed     = flag.Uint64("seed", 42, "random seed")
		list     = flag.Bool("list", false, "list workloads and exit")
		verifySC = flag.Bool("sc", false, "verify sequential consistency with the constraint-graph checker")
		verbose  = flag.Bool("v", false, "print detailed counters")

		traceOut    = flag.String("trace", "", "write the event trace to this file (- for stdout)")
		traceFormat = flag.String("trace-format", "jsonl", "trace format: jsonl | chrome | ring")
		traceRing   = flag.Int("trace-ring", 512, "ring format: events retained")
		traceFreeze = flag.String("trace-freeze", "", "ring format: freeze trigger: squash | replay-squash (empty = keep rolling)")
		snapEvery   = flag.Int64("snapshot-interval", 0, "sample metrics snapshots every N cycles (0 = off)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *list {
		for _, w := range workload.Catalog() {
			kind := "uni"
			if w.Multi {
				kind = "mp"
			}
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Suite, kind)
		}
		return
	}
	work, ok := workload.ByName(*workName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workName)
		os.Exit(1)
	}
	var cfg config.Machine
	switch *machine {
	case "baseline":
		cfg = config.Baseline()
	case "replay-all":
		cfg = config.Replay(core.ReplayAll)
	case "no-reorder":
		cfg = config.Replay(core.NoReorder)
	case "no-recent-miss":
		cfg = config.Replay(core.NoRecentMiss)
	case "no-recent-snoop":
		cfg = config.Replay(core.NoRecentSnoop)
	case "baseline-lq16":
		cfg = config.ConstrainedBaseline(16)
	case "baseline-lq32":
		cfg = config.ConstrainedBaseline(32)
	case "baseline-insulated":
		cfg = config.InsulatedBaseline()
	case "baseline-hybrid":
		cfg = config.HybridBaseline()
	case "baseline-bloom":
		cfg = config.BloomBaseline()
	case "baseline-hiersq":
		cfg = config.HierSQBaseline()
	case "replay-vpred":
		cfg = config.ReplayVP(core.NoRecentSnoop)
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(1)
	}
	// Trace plumbing: the chosen format's sink is teed with a counting
	// sink so the end-of-run summary can report per-kind event totals.
	var (
		counts   = &trace.CountSink{}
		ring     *trace.RingSink
		fileSink trace.Sink
		traceDst *os.File
		tracer   *trace.Tracer
		closeDst bool
	)
	if *traceOut != "" {
		traceDst = os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			traceDst = f
			closeDst = true
		}
		switch *traceFormat {
		case "jsonl":
			fileSink = trace.NewJSONLSink(traceDst)
		case "chrome":
			fileSink = trace.NewChromeSink(traceDst)
		case "ring":
			if *traceRing <= 0 {
				fmt.Fprintf(os.Stderr, "-trace-ring must be positive (got %d)\n", *traceRing)
				os.Exit(1)
			}
			ring = trace.NewRingSink(*traceRing)
			switch *traceFreeze {
			case "":
				// Keep rolling: the ring ends up holding the last events
				// of the run.
			case "squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash
				}
			case "replay-squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash &&
						(ev.Reason == trace.RSquashReplayRAW ||
							ev.Reason == trace.RSquashReplayCons ||
							ev.Reason == trace.RSquashVPred)
				}
			default:
				fmt.Fprintf(os.Stderr, "unknown -trace-freeze %q\n", *traceFreeze)
				os.Exit(1)
			}
			fileSink = ring
		default:
			fmt.Fprintf(os.Stderr, "unknown -trace-format %q\n", *traceFormat)
			os.Exit(1)
		}
		tracer = trace.New(&trace.TeeSink{Sinks: []trace.Sink{fileSink, counts}})
	}

	opt := system.Options{Cores: *cores, Seed: *seed, DMAInterval: 4000, DMABurst: 2,
		TrackConsistency: *verifySC, Trace: tracer, SnapshotInterval: *snapEvery}
	s := system.New(cfg, work, opt)
	start := time.Now()
	res := s.Run(*insts, opt)
	elapsed := time.Since(start)
	fmt.Println(res)
	p := res.Pipe
	fmt.Printf("loads=%d stores=%d branches=%d mispredict=%.4f\n",
		p.CommittedLoads, p.CommittedStores, p.CommittedBranches,
		float64(res.Counters.Get("bp.mispredicts"))/float64(max64(1, res.Counters.Get("bp.lookups"))))
	fmt.Printf("L1D: demand=%d forwarded=%d replay=%d store=%d\n",
		p.DemandLoadAccesses, p.ForwardedLoads, p.ReplayAccesses, p.StoreAccesses)
	fmt.Printf("squash: mispred=%d rawLQ=%d invalLQ=%d replayRAW=%d replayCons=%d\n",
		p.SquashesMispredict, p.SquashesRAW, p.SquashesInval, p.SquashesReplayRAW, p.SquashesReplayCons)
	fmt.Printf("flags: NUS=%d reordered=%d  ROBavg=%.1f\n",
		p.LoadsNUSFlagged, p.LoadsReordered, p.AvgROBOccupancy())
	fmt.Printf("replays/instr=%.4f  sim-speed=%.0f inst/s\n",
		float64(p.ReplayAccesses)/float64(p.Committed),
		float64(p.Committed)/elapsed.Seconds())
	if s.Metrics != nil {
		fmt.Printf("snapshots: %d recorded  occupancy means: ROB=%.1f LQ=%.1f SQ=%.1f (core 0)\n",
			len(s.Metrics.Snapshots),
			s.Metrics.ROB[0].Mean(), s.Metrics.LQ[0].Mean(), s.Metrics.SQ[0].Mean())
	}
	scViolation := false
	if *verifySC {
		// The SC check runs before trace finalization so the checker's
		// graph-edge events land in the trace file.
		op, cyc, g := s.CheckSC()
		if cyc {
			fmt.Printf("SC VIOLATION: %s at proc %d op %d addr %#x\n", g, op.Proc, op.Index, op.Addr)
			scViolation = true
		} else {
			fmt.Printf("sequentially consistent ✓ (%s)\n", g)
		}
	}
	if tracer != nil {
		if ring != nil {
			// Ring post-mortem: dump the frozen (or final) window as text.
			state := "last"
			if ring.Frozen() {
				state = "frozen at trigger;"
			}
			fmt.Fprintf(traceDst, "# ring post-mortem: %s %d events\n", state, ring.Len())
			if err := ring.Dump(traceDst); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if closeDst {
			if err := traceDst.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("trace: %d events (load-issue=%d filter=%d replay=%d mismatch=%d squash=%d snoop=%d fill=%d graph-edge=%d)\n",
			counts.Total(),
			counts.Count(trace.KLoadIssue), counts.Count(trace.KFilterDecision),
			counts.Count(trace.KReplay), counts.Count(trace.KValueMismatch),
			counts.Count(trace.KSquash), counts.Count(trace.KSnoopInval),
			counts.Count(trace.KExtFill), counts.Count(trace.KGraphEdge))
	}
	if scViolation {
		os.Exit(2)
	}
	if *verbose {
		fmt.Print(res.Counters)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
