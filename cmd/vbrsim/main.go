// Command vbrsim runs one workload on one machine configuration and
// prints its statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/par"
	"vbmo/internal/stats"
	"vbmo/internal/system"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

func main() {
	var (
		workName = flag.String("workload", "gzip", "workload name (see -list)")
		machine  = flag.String("machine", "baseline", "machine configuration (see -list-machines)")
		cores    = flag.Int("cores", 1, "number of processors")
		insts    = flag.Uint64("n", 100000, "instructions to commit per core")
		seed     = flag.Uint64("seed", 42, "random seed")
		seeds    = flag.Int("seeds", 1, "sweep N consecutive seeds (seed, seed+1, ...) and report each run")
		parallel = flag.Bool("parallel", true, "run a -seeds sweep on multiple OS threads")
		workers  = flag.Int("workers", 0, "worker pool size for a parallel sweep (0 = one per GOMAXPROCS)")
		list     = flag.Bool("list", false, "list workloads and exit")
		listMach = flag.Bool("list-machines", false, "list machine configurations and exit")
		verifySC = flag.Bool("sc", false, "verify sequential consistency with the constraint-graph checker")
		jsonOut  = flag.Bool("json", false, "emit the end-of-run counters as a single JSON object instead of text")
		verbose  = flag.Bool("v", false, "print detailed counters")

		traceOut    = flag.String("trace", "", "write the event trace to this file (- for stdout)")
		traceFormat = flag.String("trace-format", "jsonl", "trace format: jsonl | chrome | ring")
		traceRing   = flag.Int("trace-ring", 512, "ring format: events retained")
		traceFreeze = flag.String("trace-freeze", "", "ring format: freeze trigger: squash | replay-squash (empty = keep rolling)")
		snapEvery   = flag.Int64("snapshot-interval", 0, "sample metrics snapshots every N cycles (0 = off)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *list {
		for _, w := range workload.Catalog() {
			kind := "uni"
			if w.Multi {
				kind = "mp"
			}
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Suite, kind)
		}
		return
	}
	if *listMach {
		for _, name := range config.Names() {
			fmt.Printf("%-20s %s\n", name, config.Describe(name))
		}
		return
	}
	work, ok := workload.ByName(*workName)
	if !ok {
		names := make([]string, 0, len(workload.Catalog()))
		for _, w := range workload.Catalog() {
			names = append(names, w.Name)
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q; valid workloads: %s\n",
			*workName, strings.Join(names, ", "))
		os.Exit(1)
	}
	cfg, ok := config.ByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q; valid machines: %s\n",
			*machine, strings.Join(config.Names(), ", "))
		os.Exit(1)
	}
	if *seeds > 1 {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "-trace is incompatible with -seeds > 1 (interleaved runs would share one event stream)")
			os.Exit(1)
		}
		if *snapEvery != 0 {
			fmt.Fprintln(os.Stderr, "-snapshot-interval is incompatible with -seeds > 1")
			os.Exit(1)
		}
		runSeedSweep(cfg, work, sweepOptions{
			cores: *cores, insts: *insts, baseSeed: *seed, seeds: *seeds,
			parallel: *parallel, workers: *workers,
			verifySC: *verifySC, jsonOut: *jsonOut,
		})
		return
	}
	// Trace plumbing: the chosen format's sink is teed with a counting
	// sink so the end-of-run summary can report per-kind event totals.
	var (
		counts   = &trace.CountSink{}
		ring     *trace.RingSink
		fileSink trace.Sink
		traceDst *os.File
		tracer   *trace.Tracer
		closeDst bool
	)
	if *traceOut != "" {
		traceDst = os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			traceDst = f
			closeDst = true
		}
		switch *traceFormat {
		case "jsonl":
			fileSink = trace.NewJSONLSink(traceDst)
		case "chrome":
			fileSink = trace.NewChromeSink(traceDst)
		case "ring":
			if *traceRing <= 0 {
				fmt.Fprintf(os.Stderr, "-trace-ring must be positive (got %d)\n", *traceRing)
				os.Exit(1)
			}
			ring = trace.NewRingSink(*traceRing)
			switch *traceFreeze {
			case "":
				// Keep rolling: the ring ends up holding the last events
				// of the run.
			case "squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash
				}
			case "replay-squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash &&
						(ev.Reason == trace.RSquashReplayRAW ||
							ev.Reason == trace.RSquashReplayCons ||
							ev.Reason == trace.RSquashVPred)
				}
			default:
				fmt.Fprintf(os.Stderr, "unknown -trace-freeze %q\n", *traceFreeze)
				os.Exit(1)
			}
			fileSink = ring
		default:
			fmt.Fprintf(os.Stderr, "unknown -trace-format %q\n", *traceFormat)
			os.Exit(1)
		}
		tracer = trace.New(&trace.TeeSink{Sinks: []trace.Sink{fileSink, counts}})
	}

	opt := system.Options{Cores: *cores, Seed: *seed, DMAInterval: 4000, DMABurst: 2,
		TrackConsistency: *verifySC, Trace: tracer, SnapshotInterval: *snapEvery}
	s := system.New(cfg, work, opt)
	start := time.Now()
	res := s.Run(*insts, opt)
	elapsed := time.Since(start)
	p := res.Pipe
	if !*jsonOut {
		fmt.Println(res)
		fmt.Printf("loads=%d stores=%d branches=%d mispredict=%.4f\n",
			p.CommittedLoads, p.CommittedStores, p.CommittedBranches,
			float64(res.Counters.Get("bp.mispredicts"))/float64(max64(1, res.Counters.Get("bp.lookups"))))
		fmt.Printf("L1D: demand=%d forwarded=%d replay=%d store=%d\n",
			p.DemandLoadAccesses, p.ForwardedLoads, p.ReplayAccesses, p.StoreAccesses)
		fmt.Printf("squash: mispred=%d rawLQ=%d invalLQ=%d replayRAW=%d replayCons=%d\n",
			p.SquashesMispredict, p.SquashesRAW, p.SquashesInval, p.SquashesReplayRAW, p.SquashesReplayCons)
		fmt.Printf("flags: NUS=%d reordered=%d  ROBavg=%.1f\n",
			p.LoadsNUSFlagged, p.LoadsReordered, p.AvgROBOccupancy())
		fmt.Printf("replays/instr=%.4f  sim-speed=%.0f inst/s\n",
			float64(p.ReplayAccesses)/float64(p.Committed),
			float64(p.Committed)/elapsed.Seconds())
		if s.Metrics != nil {
			fmt.Printf("snapshots: %d recorded  occupancy means: ROB=%.1f LQ=%.1f SQ=%.1f (core 0)\n",
				len(s.Metrics.Snapshots),
				s.Metrics.ROB[0].Mean(), s.Metrics.LQ[0].Mean(), s.Metrics.SQ[0].Mean())
		}
	}
	scViolation := false
	scResult := ""
	if *verifySC {
		// The SC check runs before trace finalization so the checker's
		// graph-edge events land in the trace file.
		op, cyc, g := s.CheckSC()
		if cyc {
			scResult = fmt.Sprintf("violation: %s at proc %d op %d addr %#x", g, op.Proc, op.Index, op.Addr)
			scViolation = true
		} else {
			scResult = fmt.Sprintf("consistent (%s)", g)
		}
		if !*jsonOut {
			if cyc {
				fmt.Printf("SC VIOLATION: %s\n", scResult)
			} else {
				fmt.Printf("sequentially consistent ✓ (%s)\n", g)
			}
		}
	}
	if *jsonOut {
		out := resultJSON(res, *seed, elapsed.Seconds())
		if *verifySC {
			out.SC = &scResult
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if tracer != nil {
		if ring != nil {
			// Ring post-mortem: dump the frozen (or final) window as text.
			state := "last"
			if ring.Frozen() {
				state = "frozen at trigger;"
			}
			fmt.Fprintf(traceDst, "# ring post-mortem: %s %d events\n", state, ring.Len())
			if err := ring.Dump(traceDst); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if closeDst {
			if err := traceDst.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if !*jsonOut {
			fmt.Printf("trace: %d events (load-issue=%d filter=%d replay=%d mismatch=%d squash=%d snoop=%d fill=%d graph-edge=%d)\n",
				counts.Total(),
				counts.Count(trace.KLoadIssue), counts.Count(trace.KFilterDecision),
				counts.Count(trace.KReplay), counts.Count(trace.KValueMismatch),
				counts.Count(trace.KSquash), counts.Count(trace.KSnoopInval),
				counts.Count(trace.KExtFill), counts.Count(trace.KGraphEdge))
		}
	}
	if scViolation {
		os.Exit(2)
	}
	if *verbose && !*jsonOut {
		fmt.Print(res.Counters)
	}
}

// jsonResult is the -json output shape: the end-of-run counters as one
// JSON object on stdout, nothing else.
type jsonResult struct {
	Machine    string            `json:"machine"`
	Workload   string            `json:"workload"`
	Cores      int               `json:"cores"`
	Seed       uint64            `json:"seed"`
	Cycles     int64             `json:"cycles"`
	Committed  uint64            `json:"committed"`
	IPC        float64           `json:"ipc"`
	ElapsedSec float64           `json:"elapsed_sec"`
	Loads      uint64            `json:"loads"`
	Stores     uint64            `json:"stores"`
	Branches   uint64            `json:"branches"`
	Replays    uint64            `json:"replays"`
	Squashes   jsonSquashes      `json:"squashes"`
	SC         *string           `json:"sc,omitempty"`
	Counters   map[string]uint64 `json:"counters"`
}

type jsonSquashes struct {
	Mispredict uint64 `json:"mispredict"`
	RAWLQ      uint64 `json:"raw_lq"`
	InvalLQ    uint64 `json:"inval_lq"`
	ReplayRAW  uint64 `json:"replay_raw"`
	ReplayCons uint64 `json:"replay_cons"`
}

// resultJSON flattens an end-of-run Result into the -json wire shape.
func resultJSON(res system.Result, seed uint64, elapsed float64) jsonResult {
	p := res.Pipe
	counters := make(map[string]uint64, len(res.Counters.Names()))
	for _, name := range res.Counters.Names() {
		counters[name] = res.Counters.Get(name)
	}
	return jsonResult{
		Machine:    res.Machine,
		Workload:   res.Workload,
		Cores:      res.Cores,
		Seed:       seed,
		Cycles:     res.Cycles,
		Committed:  p.Committed,
		IPC:        res.IPC,
		ElapsedSec: elapsed,
		Loads:      p.CommittedLoads,
		Stores:     p.CommittedStores,
		Branches:   p.CommittedBranches,
		Replays:    p.ReplayAccesses,
		Squashes: jsonSquashes{
			Mispredict: p.SquashesMispredict,
			RAWLQ:      p.SquashesRAW,
			InvalLQ:    p.SquashesInval,
			ReplayRAW:  p.SquashesReplayRAW,
			ReplayCons: p.SquashesReplayCons,
		},
		Counters: counters,
	}
}

// sweepOptions scopes one -seeds sweep.
type sweepOptions struct {
	cores    int
	insts    uint64
	baseSeed uint64
	seeds    int
	parallel bool
	workers  int
	verifySC bool
	jsonOut  bool
}

// runSeedSweep runs the workload once per seed across a worker pool
// and reports every run in seed order: JSON Lines (one -json object
// per run) or a text table with an IPC summary. Results are written
// only after every cell finishes, so output order — and, because each
// cell derives its own seed, every number in it — is independent of
// worker scheduling.
func runSeedSweep(cfg config.Machine, work workload.Params, o sweepOptions) {
	type seedRun struct {
		res     system.Result
		elapsed float64
		scText  string
		scViol  bool
	}
	runs := make([]seedRun, o.seeds)
	workers := 1
	if o.parallel {
		workers = par.Workers(o.workers)
	}
	par.Run(workers, o.seeds, func(i int) {
		opt := system.Options{
			Cores: o.cores, Seed: o.baseSeed + uint64(i),
			DMAInterval: 4000, DMABurst: 2,
			TrackConsistency: o.verifySC,
		}
		s := system.New(cfg, work, opt)
		start := time.Now()
		runs[i].res = s.Run(o.insts, opt)
		runs[i].elapsed = time.Since(start).Seconds()
		if o.verifySC {
			op, cyc, g := s.CheckSC()
			if cyc {
				runs[i].scText = fmt.Sprintf("violation: %s at proc %d op %d addr %#x", g, op.Proc, op.Index, op.Addr)
				runs[i].scViol = true
			} else {
				runs[i].scText = fmt.Sprintf("consistent (%s)", g)
			}
		}
	})

	anyViolation := false
	var ipc stats.Sample
	enc := json.NewEncoder(os.Stdout)
	for i := range runs {
		r := &runs[i]
		anyViolation = anyViolation || r.scViol
		ipc.Observe(r.res.IPC)
		if o.jsonOut {
			out := resultJSON(r.res, o.baseSeed+uint64(i), r.elapsed)
			if o.verifySC {
				out.SC = &r.scText
			}
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		p := r.res.Pipe
		fmt.Printf("seed=%-6d ipc=%.4f committed=%d cycles=%d replays=%d squashes=%d",
			o.baseSeed+uint64(i), r.res.IPC, p.Committed, r.res.Cycles, p.ReplayAccesses,
			p.SquashesMispredict+p.SquashesRAW+p.SquashesInval+p.SquashesReplayRAW+p.SquashesReplayCons)
		if o.verifySC {
			fmt.Printf(" sc=%q", r.scText)
		}
		fmt.Println()
	}
	if !o.jsonOut {
		fmt.Printf("%d seeds: IPC %s\n", o.seeds, ipc.String())
	}
	if anyViolation {
		os.Exit(2)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
