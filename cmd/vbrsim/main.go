// Command vbrsim runs one workload on one machine configuration and
// prints its statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/core"
	"vbmo/internal/system"
	"vbmo/internal/workload"
)

func main() {
	var (
		workName = flag.String("workload", "gzip", "workload name (see -list)")
		machine  = flag.String("machine", "baseline", "baseline | replay-all | no-reorder | no-recent-miss | no-recent-snoop | baseline-lq16 | baseline-lq32 | baseline-insulated | baseline-hybrid | baseline-bloom | baseline-hiersq | replay-vpred")
		cores    = flag.Int("cores", 1, "number of processors")
		insts    = flag.Uint64("n", 100000, "instructions to commit per core")
		seed     = flag.Uint64("seed", 42, "random seed")
		list     = flag.Bool("list", false, "list workloads and exit")
		verifySC = flag.Bool("sc", false, "verify sequential consistency with the constraint-graph checker")
		verbose  = flag.Bool("v", false, "print detailed counters")
	)
	flag.Parse()
	if *list {
		for _, w := range workload.Catalog() {
			kind := "uni"
			if w.Multi {
				kind = "mp"
			}
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Suite, kind)
		}
		return
	}
	work, ok := workload.ByName(*workName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workName)
		os.Exit(1)
	}
	var cfg config.Machine
	switch *machine {
	case "baseline":
		cfg = config.Baseline()
	case "replay-all":
		cfg = config.Replay(core.ReplayAll)
	case "no-reorder":
		cfg = config.Replay(core.NoReorder)
	case "no-recent-miss":
		cfg = config.Replay(core.NoRecentMiss)
	case "no-recent-snoop":
		cfg = config.Replay(core.NoRecentSnoop)
	case "baseline-lq16":
		cfg = config.ConstrainedBaseline(16)
	case "baseline-lq32":
		cfg = config.ConstrainedBaseline(32)
	case "baseline-insulated":
		cfg = config.InsulatedBaseline()
	case "baseline-hybrid":
		cfg = config.HybridBaseline()
	case "baseline-bloom":
		cfg = config.BloomBaseline()
	case "baseline-hiersq":
		cfg = config.HierSQBaseline()
	case "replay-vpred":
		cfg = config.ReplayVP(core.NoRecentSnoop)
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(1)
	}
	opt := system.Options{Cores: *cores, Seed: *seed, DMAInterval: 4000, DMABurst: 2,
		TrackConsistency: *verifySC}
	s := system.New(cfg, work, opt)
	start := time.Now()
	res := s.Run(*insts, opt)
	elapsed := time.Since(start)
	fmt.Println(res)
	p := res.Pipe
	fmt.Printf("loads=%d stores=%d branches=%d mispredict=%.4f\n",
		p.CommittedLoads, p.CommittedStores, p.CommittedBranches,
		float64(res.Counters.Get("bp.mispredicts"))/float64(max64(1, res.Counters.Get("bp.lookups"))))
	fmt.Printf("L1D: demand=%d forwarded=%d replay=%d store=%d\n",
		p.DemandLoadAccesses, p.ForwardedLoads, p.ReplayAccesses, p.StoreAccesses)
	fmt.Printf("squash: mispred=%d rawLQ=%d invalLQ=%d replayRAW=%d replayCons=%d\n",
		p.SquashesMispredict, p.SquashesRAW, p.SquashesInval, p.SquashesReplayRAW, p.SquashesReplayCons)
	fmt.Printf("flags: NUS=%d reordered=%d  ROBavg=%.1f\n",
		p.LoadsNUSFlagged, p.LoadsReordered, p.AvgROBOccupancy())
	fmt.Printf("replays/instr=%.4f  sim-speed=%.0f inst/s\n",
		float64(p.ReplayAccesses)/float64(p.Committed),
		float64(p.Committed)/elapsed.Seconds())
	if *verifySC {
		op, cyc, g := s.CheckSC()
		if cyc {
			fmt.Printf("SC VIOLATION: %s at proc %d op %d addr %#x\n", g, op.Proc, op.Index, op.Addr)
			os.Exit(2)
		}
		fmt.Printf("sequentially consistent ✓ (%s)\n", g)
	}
	if *verbose {
		fmt.Print(res.Counters)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
