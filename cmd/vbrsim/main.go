// Command vbrsim runs one workload on one machine configuration and
// prints its statistics.
//
// Exit codes: 0 success; 1 usage or infrastructure failure (including
// failed sweep cells); 2 SC violation; 3 run ended before the commit
// target; 4 watchdog deadlock; 5 an injected fault escaped detection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/exitcode"
	"vbmo/internal/fault"
	"vbmo/internal/par"
	"vbmo/internal/stats"
	"vbmo/internal/system"
	"vbmo/internal/trace"
	"vbmo/internal/workload"
)

func main() {
	var (
		workName = flag.String("workload", "gzip", "workload name (see -list)")
		machine  = flag.String("machine", "baseline", "machine configuration (see -list-machines)")
		cores    = flag.Int("cores", 1, "number of processors")
		insts    = flag.Uint64("n", 100000, "instructions to commit per core")
		seed     = flag.Uint64("seed", 42, "random seed")
		seeds    = flag.Int("seeds", 1, "sweep N consecutive seeds (seed, seed+1, ...) and report each run")
		parallel = flag.Bool("parallel", true, "run a -seeds sweep on multiple OS threads")
		workers  = flag.Int("workers", 0, "worker pool size for a parallel sweep (0 = one per GOMAXPROCS)")
		list     = flag.Bool("list", false, "list workloads and exit")
		listMach = flag.Bool("list-machines", false, "list machine configurations and exit")
		verifySC = flag.Bool("sc", false, "verify sequential consistency with the constraint-graph checker")
		jsonOut  = flag.Bool("json", false, "emit the end-of-run counters as a single JSON object instead of text")
		verbose  = flag.Bool("v", false, "print detailed counters")

		faultKinds  = flag.String("fault", "", "inject faults: comma-separated kinds (see internal/fault) or \"all\" (empty = off)")
		faultRate   = flag.Float64("fault-rate", 0.001, "per-opportunity fault probability (1.0 = every opportunity)")
		faultSeed   = flag.Uint64("fault-seed", 0, "fault RNG seed (0 = derive from -seed)")
		faultDelay  = flag.Int64("fault-delay", 0, "base delay in cycles for delay-* kinds (0 = package default)")
		wdCycles    = flag.Int64("watchdog-cycles", 0, "declare deadlock after N cycles with no commit on any core (0 = off)")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline for a -seeds sweep (0 = none; nondeterministic)")
		retries     = flag.Int("retries", 0, "re-attempts for a failed sweep cell")
		resume      = flag.String("resume", "", "JSONL checkpoint journal for a -seeds sweep; existing completed cells are replayed, not re-run")

		traceOut    = flag.String("trace", "", "write the event trace to this file (- for stdout)")
		traceFormat = flag.String("trace-format", "jsonl", "trace format: jsonl | chrome | ring")
		traceRing   = flag.Int("trace-ring", 512, "ring format: events retained")
		traceFreeze = flag.String("trace-freeze", "", "ring format: freeze trigger: squash | replay-squash (empty = keep rolling)")
		snapEvery   = flag.Int64("snapshot-interval", 0, "sample metrics snapshots every N cycles (0 = off)")
		noFF        = flag.Bool("no-fastforward", false, "disable quiescence cycle-skipping (results are bit-identical either way; for A/B timing)")
		noSkip      = flag.Bool("no-stageskip", false, "disable per-stage readiness skipping (results are bit-identical either way; for A/B timing)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *list {
		for _, w := range workload.Catalog() {
			kind := "uni"
			if w.Multi {
				kind = "mp"
			}
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Suite, kind)
		}
		return
	}
	if *listMach {
		for _, name := range config.Names() {
			fmt.Printf("%-20s %s\n", name, config.Describe(name))
		}
		return
	}
	work, ok := workload.ByName(*workName)
	if !ok {
		names := make([]string, 0, len(workload.Catalog()))
		for _, w := range workload.Catalog() {
			names = append(names, w.Name)
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q; valid workloads: %s\n",
			*workName, strings.Join(names, ", "))
		os.Exit(exitcode.Err)
	}
	cfg, ok := config.ByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q; valid machines: %s\n",
			*machine, strings.Join(config.Names(), ", "))
		os.Exit(exitcode.Err)
	}
	fc, err := faultConfig(*faultKinds, *faultRate, *faultSeed, *faultDelay, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitcode.Err)
	}
	if *cores < 1 || *cores > config.MaxCores {
		fmt.Fprintf(os.Stderr, "-cores must be between 1 and %d\n", config.MaxCores)
		os.Exit(exitcode.Err)
	}
	if *seeds > 1 {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "-trace is incompatible with -seeds > 1 (interleaved runs would share one event stream)")
			os.Exit(exitcode.Err)
		}
		if *snapEvery != 0 {
			fmt.Fprintln(os.Stderr, "-snapshot-interval is incompatible with -seeds > 1")
			os.Exit(exitcode.Err)
		}
		runSeedSweep(cfg, work, sweepOptions{
			cores: *cores, insts: *insts, baseSeed: *seed, seeds: *seeds,
			parallel: *parallel, workers: *workers,
			verifySC: *verifySC, jsonOut: *jsonOut, noFF: *noFF, noSkip: *noSkip,
			fault: fc, wdCycles: *wdCycles,
			cellTimeout: *cellTimeout, retries: *retries, journal: *resume,
		})
		return
	}
	if *resume != "" || *cellTimeout != 0 || *retries != 0 {
		fmt.Fprintln(os.Stderr, "-resume, -cell-timeout and -retries apply only to a -seeds sweep")
		os.Exit(exitcode.Err)
	}
	// Trace plumbing: the chosen format's sink is teed with a counting
	// sink so the end-of-run summary can report per-kind event totals.
	var (
		counts   = &trace.CountSink{}
		ring     *trace.RingSink
		fileSink trace.Sink
		traceDst *os.File
		tracer   *trace.Tracer
		closeDst bool
	)
	if *traceOut != "" {
		traceDst = os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitcode.Err)
			}
			traceDst = f
			closeDst = true
		}
		switch *traceFormat {
		case "jsonl":
			fileSink = trace.NewJSONLSink(traceDst)
		case "chrome":
			fileSink = trace.NewChromeSink(traceDst)
		case "ring":
			if *traceRing <= 0 {
				fmt.Fprintf(os.Stderr, "-trace-ring must be positive (got %d)\n", *traceRing)
				os.Exit(exitcode.Err)
			}
			ring = trace.NewRingSink(*traceRing)
			switch *traceFreeze {
			case "":
				// Keep rolling: the ring ends up holding the last events
				// of the run.
			case "squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash
				}
			case "replay-squash":
				ring.FreezeWhen = func(ev trace.Event) bool {
					return ev.Kind == trace.KSquash &&
						(ev.Reason == trace.RSquashReplayRAW ||
							ev.Reason == trace.RSquashReplayCons ||
							ev.Reason == trace.RSquashVPred)
				}
			default:
				fmt.Fprintf(os.Stderr, "unknown -trace-freeze %q\n", *traceFreeze)
				os.Exit(exitcode.Err)
			}
			fileSink = ring
		default:
			fmt.Fprintf(os.Stderr, "unknown -trace-format %q\n", *traceFormat)
			os.Exit(exitcode.Err)
		}
		tracer = trace.New(&trace.TeeSink{Sinks: []trace.Sink{fileSink, counts}})
	}

	opt := system.Options{Cores: *cores, Seed: *seed, DMAInterval: 4000, DMABurst: 2,
		TrackConsistency: *verifySC, Trace: tracer, SnapshotInterval: *snapEvery,
		Fault: fc, WatchdogCycles: *wdCycles, NoFastForward: *noFF, NoStageSkip: *noSkip}
	s := system.New(cfg, work, opt)
	start := time.Now()
	res := s.Run(*insts, opt)
	elapsed := time.Since(start)
	p := res.Pipe
	incomplete := p.Committed < *insts*uint64(*cores)
	if !*jsonOut {
		fmt.Println(res)
		fmt.Printf("loads=%d stores=%d branches=%d mispredict=%.4f\n",
			p.CommittedLoads, p.CommittedStores, p.CommittedBranches,
			float64(res.Counters.Get("bp.mispredicts"))/float64(max64(1, res.Counters.Get("bp.lookups"))))
		fmt.Printf("L1D: demand=%d forwarded=%d replay=%d store=%d\n",
			p.DemandLoadAccesses, p.ForwardedLoads, p.ReplayAccesses, p.StoreAccesses)
		fmt.Printf("squash: mispred=%d rawLQ=%d invalLQ=%d replayRAW=%d replayCons=%d\n",
			p.SquashesMispredict, p.SquashesRAW, p.SquashesInval, p.SquashesReplayRAW, p.SquashesReplayCons)
		fmt.Printf("flags: NUS=%d reordered=%d  ROBavg=%.1f\n",
			p.LoadsNUSFlagged, p.LoadsReordered, p.AvgROBOccupancy())
		fmt.Printf("replays/instr=%.4f  sim-speed=%.0f inst/s\n",
			float64(p.ReplayAccesses)/float64(p.Committed),
			float64(p.Committed)/elapsed.Seconds())
		if ffs := s.FastForwardStats(); ffs.Windows > 0 {
			fmt.Printf("fast-forward: windows=%d skipped-cycles=%d (%.1f%% of cycles)\n",
				ffs.Windows, ffs.SkippedCycles, 100*float64(ffs.SkippedCycles)/float64(max64(1, uint64(res.Cycles))))
		}
		if sks := s.StageSkipStats(); sks.Total() > 0 {
			// Rate denominators are core-cycles actually stepped (fast-
			// forwarded windows never reach the stage scans).
			cc := max64(1, uint64(res.Cycles)*uint64(*cores))
			fmt.Printf("stage-skip: wb=%.1f%% capture=%.1f%% commit=%.1f%% replay=%.1f%% issue=%.1f%% of core-cycles\n",
				100*float64(sks.Writeback)/float64(cc), 100*float64(sks.Capture)/float64(cc),
				100*float64(sks.Commit)/float64(cc), 100*float64(sks.Replay)/float64(cc),
				100*float64(sks.Issue)/float64(cc))
		}
		if s.Metrics != nil {
			fmt.Printf("snapshots: %d recorded  occupancy means: ROB=%.1f LQ=%.1f SQ=%.1f (core 0)\n",
				len(s.Metrics.Snapshots),
				s.Metrics.ROB[0].Mean(), s.Metrics.LQ[0].Mean(), s.Metrics.SQ[0].Mean())
		}
	}
	scViolation := false
	scResult := ""
	if *verifySC {
		// The SC check runs before trace finalization so the checker's
		// graph-edge events land in the trace file.
		op, cyc, g := s.CheckSC()
		if cyc {
			scResult = fmt.Sprintf("violation: %s at proc %d op %d addr %#x", g, op.Proc, op.Index, op.Addr)
			scViolation = true
		} else {
			scResult = fmt.Sprintf("consistent (%s)", g)
		}
		if !*jsonOut {
			if cyc {
				fmt.Printf("SC VIOLATION: %s\n", scResult)
			} else {
				fmt.Printf("sequentially consistent ✓ (%s)\n", g)
			}
		}
	}
	if !*jsonOut && s.Faults != nil {
		fmt.Println(s.Faults.Summary())
		fmt.Printf("fault detection latency: %s\n", s.Faults.Lat.String())
	}
	if *jsonOut {
		out := resultJSON(res, *seed, elapsed.Seconds())
		if *verifySC {
			out.SC = &scResult
		}
		attachDiagnostics(&out, s, incomplete)
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	}
	if tracer != nil {
		if ring != nil {
			// Ring post-mortem: dump the frozen (or final) window as text.
			state := "last"
			if ring.Frozen() {
				state = "frozen at trigger;"
			}
			fmt.Fprintf(traceDst, "# ring post-mortem: %s %d events\n", state, ring.Len())
			if err := ring.Dump(traceDst); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitcode.Err)
			}
		}
		if err := tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		if closeDst {
			if err := traceDst.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitcode.Err)
			}
		}
		if !*jsonOut {
			fmt.Printf("trace: %d events (load-issue=%d filter=%d replay=%d mismatch=%d squash=%d snoop=%d fill=%d graph-edge=%d)\n",
				counts.Total(),
				counts.Count(trace.KLoadIssue), counts.Count(trace.KFilterDecision),
				counts.Count(trace.KReplay), counts.Count(trace.KValueMismatch),
				counts.Count(trace.KSquash), counts.Count(trace.KSnoopInval),
				counts.Count(trace.KExtFill), counts.Count(trace.KGraphEdge))
		}
	}
	if *verbose && !*jsonOut {
		fmt.Print(res.Counters)
	}
	// Exit-path audit: every soundness failure is a nonzero exit, in
	// severity order. An SC violation outranks everything; a watchdog
	// deadlock outranks the incomplete-run it necessarily causes; a fault
	// that escaped detection is reported even when the run completed.
	switch {
	case scViolation:
		os.Exit(exitcode.SCViolation)
	case s.Deadlock != nil:
		fmt.Fprintf(os.Stderr, "DEADLOCK:\n%s", s.Deadlock)
		os.Exit(exitcode.Deadlock)
	case s.Faults != nil && s.Faults.Stats.Missed > 0:
		fmt.Fprintf(os.Stderr, "FAULT MISS: %d injected fault(s) committed undetected (%s)\n",
			s.Faults.Stats.Missed, s.Faults.Summary())
		os.Exit(exitcode.FaultEscape)
	case incomplete:
		fmt.Fprintf(os.Stderr, "INCOMPLETE: committed %d of %d target instructions\n",
			p.Committed, *insts*uint64(*cores))
		os.Exit(exitcode.Incomplete)
	}
}

// faultConfig builds the injector configuration from the -fault* flags;
// nil means injection is off. A zero fault seed derives one from the
// simulation seed so distinct -seed runs draw distinct fault streams.
func faultConfig(kinds string, rate float64, fseed uint64, delay int64, simSeed uint64) (*fault.Config, error) {
	if kinds == "" {
		return nil, nil
	}
	ks, err := fault.ParseKinds(kinds)
	if err != nil {
		return nil, err
	}
	if fseed == 0 {
		fseed = simSeed ^ 0x9e3779b97f4a7c15
	}
	return &fault.Config{Kinds: ks, Rate: rate, Seed: fseed, Delay: delay}, nil
}

// attachDiagnostics copies the run's fault/watchdog/progress state onto
// the JSON result; all fields stay omitted for a clean, feature-off run.
func attachDiagnostics(out *jsonResult, s *system.System, incomplete bool) {
	if s.Faults != nil {
		st := s.Faults.Stats
		out.Faults = &st
		out.FaultLatMean = s.Faults.Lat.Mean()
	}
	if wd := s.Watchdog(); wd.Storms > 0 || wd.Throttles > 0 {
		out.Watchdog = &wd
	}
	if s.Deadlock != nil {
		out.DeadlockCycle = s.Deadlock.Cycle
	}
	out.Incomplete = incomplete
}

// jsonResult is the -json output shape: the end-of-run counters as one
// JSON object on stdout, nothing else.
type jsonResult struct {
	Machine    string            `json:"machine"`
	Workload   string            `json:"workload"`
	Cores      int               `json:"cores"`
	Seed       uint64            `json:"seed"`
	Cycles     int64             `json:"cycles"`
	Committed  uint64            `json:"committed"`
	IPC        float64           `json:"ipc"`
	ElapsedSec float64           `json:"elapsed_sec"`
	Loads      uint64            `json:"loads"`
	Stores     uint64            `json:"stores"`
	Branches   uint64            `json:"branches"`
	Replays    uint64            `json:"replays"`
	Squashes   jsonSquashes      `json:"squashes"`
	SC         *string           `json:"sc,omitempty"`
	Counters   map[string]uint64 `json:"counters"`

	// Diagnostics, all omitted for a clean run with faults off.
	Faults        *fault.Stats          `json:"faults,omitempty"`
	FaultLatMean  float64               `json:"fault_lat_mean,omitempty"`
	Watchdog      *system.WatchdogStats `json:"watchdog,omitempty"`
	DeadlockCycle int64                 `json:"deadlock_cycle,omitempty"`
	Incomplete    bool                  `json:"incomplete,omitempty"`
	Error         string                `json:"error,omitempty"`
}

type jsonSquashes struct {
	Mispredict uint64 `json:"mispredict"`
	RAWLQ      uint64 `json:"raw_lq"`
	InvalLQ    uint64 `json:"inval_lq"`
	ReplayRAW  uint64 `json:"replay_raw"`
	ReplayCons uint64 `json:"replay_cons"`
}

// resultJSON flattens an end-of-run Result into the -json wire shape.
func resultJSON(res system.Result, seed uint64, elapsed float64) jsonResult {
	p := res.Pipe
	counters := make(map[string]uint64, len(res.Counters.Names()))
	for _, name := range res.Counters.Names() {
		counters[name] = res.Counters.Get(name)
	}
	return jsonResult{
		Machine:    res.Machine,
		Workload:   res.Workload,
		Cores:      res.Cores,
		Seed:       seed,
		Cycles:     res.Cycles,
		Committed:  p.Committed,
		IPC:        res.IPC,
		ElapsedSec: elapsed,
		Loads:      p.CommittedLoads,
		Stores:     p.CommittedStores,
		Branches:   p.CommittedBranches,
		Replays:    p.ReplayAccesses,
		Squashes: jsonSquashes{
			Mispredict: p.SquashesMispredict,
			RAWLQ:      p.SquashesRAW,
			InvalLQ:    p.SquashesInval,
			ReplayRAW:  p.SquashesReplayRAW,
			ReplayCons: p.SquashesReplayCons,
		},
		Counters: counters,
	}
}

// sweepOptions scopes one -seeds sweep.
type sweepOptions struct {
	cores    int
	insts    uint64
	baseSeed uint64
	seeds    int
	parallel bool
	workers  int
	verifySC bool
	jsonOut  bool
	noFF     bool
	noSkip   bool

	fault       *fault.Config
	wdCycles    int64
	cellTimeout time.Duration
	retries     int
	journal     string
}

// runSeedSweep runs the workload once per seed across a worker pool
// and reports every run in seed order: JSON Lines (one -json object
// per run) or a text table with an IPC summary. Results are written
// only after every cell finishes, so output order — and, because each
// cell derives its own seed, every number in it — is independent of
// worker scheduling.
func runSeedSweep(cfg config.Machine, work workload.Params, o sweepOptions) {
	// seedRun is the journaled per-cell record: the full -json result
	// plus the SC verdict bit, so a resumed cell replays bit-identically
	// in both output modes without re-simulating.
	type seedRun struct {
		Out    jsonResult `json:"out"`
		SCViol bool       `json:"sc_viol,omitempty"`
	}
	runs := make([]seedRun, o.seeds)
	failed := make([]bool, o.seeds)
	key := func(i int) string { return fmt.Sprintf("seed=%d", o.baseSeed+uint64(i)) }

	var journal *par.Journal
	resumed := 0
	if o.journal != "" {
		j, err := par.OpenJournal(o.journal, sweepFingerprint(cfg, work, o))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		journal = j
		defer journal.Close()
	}
	todo := make([]int, 0, o.seeds)
	for i := 0; i < o.seeds; i++ {
		if journal != nil && journal.Lookup(key(i), &runs[i]) {
			resumed++
			continue
		}
		todo = append(todo, i)
	}

	workers := 1
	if o.parallel {
		workers = par.Workers(o.workers)
	}
	failures := par.RunSafe(par.SafeOptions{
		Workers: workers, Retries: o.retries, Backoff: 50 * time.Millisecond,
		Timeout: o.cellTimeout,
		Label:   func(t int) string { return key(todo[t]) },
	}, len(todo), func(t int) error {
		i := todo[t]
		seed := o.baseSeed + uint64(i)
		opt := system.Options{
			Cores: o.cores, Seed: seed,
			DMAInterval: 4000, DMABurst: 2,
			TrackConsistency: o.verifySC,
			WatchdogCycles:   o.wdCycles,
			NoFastForward:    o.noFF,
			NoStageSkip:      o.noSkip,
		}
		if o.fault.Enabled() {
			// Each cell draws its own fault stream, derived from its seed
			// the same way the litmus sweep derives per-run fault seeds.
			d := *o.fault
			d.Seed = o.fault.Seed ^ (seed * 0x2545f4914f6cdd1d)
			opt.Fault = &d
		}
		s := system.New(cfg, work, opt)
		start := time.Now()
		res := s.Run(o.insts, opt)
		r := seedRun{Out: resultJSON(res, seed, time.Since(start).Seconds())}
		if o.verifySC {
			op, cyc, g := s.CheckSC()
			var scText string
			if cyc {
				scText = fmt.Sprintf("violation: %s at proc %d op %d addr %#x", g, op.Proc, op.Index, op.Addr)
				r.SCViol = true
			} else {
				scText = fmt.Sprintf("consistent (%s)", g)
			}
			r.Out.SC = &scText
		}
		attachDiagnostics(&r.Out, s, res.Pipe.Committed < o.insts*uint64(o.cores))
		runs[i] = r
		if journal != nil {
			if err := journal.Record(key(i), r); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
		return nil
	})
	for _, f := range failures {
		// Remap to the original cell index; the slot may hold a
		// straggler's partial write, so it is replaced wholesale and
		// excluded from every fold below.
		i := todo[f.Index]
		failed[i] = true
		runs[i] = seedRun{Out: jsonResult{
			Machine: cfg.Name, Workload: work.Name, Cores: o.cores,
			Seed: o.baseSeed + uint64(i), Error: f.String(),
		}}
	}

	anyViolation, anyDeadlock, anyMissed, anyIncomplete := false, false, false, false
	var ipc stats.Sample
	enc := json.NewEncoder(os.Stdout)
	for i := range runs {
		r := &runs[i]
		if !failed[i] {
			anyViolation = anyViolation || r.SCViol
			anyDeadlock = anyDeadlock || r.Out.DeadlockCycle != 0
			anyMissed = anyMissed || (r.Out.Faults != nil && r.Out.Faults.Missed > 0)
			anyIncomplete = anyIncomplete || r.Out.Incomplete
			ipc.Observe(r.Out.IPC)
		}
		if o.jsonOut {
			if err := enc.Encode(r.Out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitcode.Err)
			}
			continue
		}
		if failed[i] {
			fmt.Printf("seed=%-6d FAILED: %s\n", o.baseSeed+uint64(i), r.Out.Error)
			continue
		}
		p := &r.Out
		fmt.Printf("seed=%-6d ipc=%.4f committed=%d cycles=%d replays=%d squashes=%d",
			o.baseSeed+uint64(i), p.IPC, p.Committed, p.Cycles, p.Replays,
			p.Squashes.Mispredict+p.Squashes.RAWLQ+p.Squashes.InvalLQ+p.Squashes.ReplayRAW+p.Squashes.ReplayCons)
		if o.verifySC {
			fmt.Printf(" sc=%q", *p.SC)
		}
		if p.Faults != nil {
			fmt.Printf(" faults=%d/%d detected", p.Faults.Detected, p.Faults.Injected)
		}
		if p.DeadlockCycle != 0 {
			fmt.Printf(" DEADLOCK@%d", p.DeadlockCycle)
		}
		fmt.Println()
	}
	if !o.jsonOut {
		fmt.Printf("%d seeds: IPC %s\n", o.seeds, ipc.String())
		if resumed > 0 {
			fmt.Printf("resumed %d cell(s) from %s\n", resumed, o.journal)
		}
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAILED %s\n", f)
	}
	// Graceful degradation: completed cells were all reported above;
	// any soundness or infrastructure failure still exits nonzero.
	switch {
	case anyViolation:
		os.Exit(exitcode.SCViolation)
	case anyDeadlock:
		os.Exit(exitcode.Deadlock)
	case anyMissed:
		os.Exit(exitcode.FaultEscape)
	case anyIncomplete:
		os.Exit(exitcode.Incomplete)
	case len(failures) > 0:
		os.Exit(exitcode.Err)
	}
}

// sweepFingerprint binds a checkpoint journal to every input that
// shapes this sweep's cell results.
func sweepFingerprint(cfg config.Machine, work workload.Params, o sweepOptions) string {
	fp := fmt.Sprintf("vbrsim-v1|machine=%s|workload=%s|cores=%d|n=%d|base=%d|seeds=%d|sc=%t",
		cfg.Name, work.Name, o.cores, o.insts, o.baseSeed, o.seeds, o.verifySC)
	if o.fault.Enabled() {
		kinds := make([]string, 0, len(o.fault.Kinds))
		for _, k := range o.fault.Kinds {
			kinds = append(kinds, k.String())
		}
		fp += fmt.Sprintf("|fault=%s@%g/%d/%d", strings.Join(kinds, "+"),
			o.fault.Rate, o.fault.Seed, o.fault.Delay)
	}
	if o.wdCycles > 0 {
		fp += fmt.Sprintf("|wd=%d", o.wdCycles)
	}
	return fp
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
