// Command vbrfarm runs and talks to the simulation-farm service: a
// long-lived server that accepts sweep jobs (litmus batteries, §5.1
// matrix cells, simulator-speed bench cells) over HTTP, shards them
// across a work-stealing worker pool, and dedupes execution through a
// content-addressed result cache that survives crashes and restarts.
//
//	vbrfarm serve -dir farm.state -addr 127.0.0.1:8373
//	vbrfarm submit -addr http://127.0.0.1:8373 -spec job.json -wait
//	vbrfarm status -addr http://127.0.0.1:8373 -id 0123456789abcdef
//	vbrfarm results -addr http://127.0.0.1:8373 -id 0123456789abcdef
//	vbrfarm metrics -addr http://127.0.0.1:8373
//
// A job spec is a JSON document with any subset of "litmus", "matrix",
// and "bench" sections (see EXPERIMENTS.md for a worked example).
// Submitting the same spec twice is idempotent: the job ID is the
// content digest of the spec plus the code fingerprint, and cells whose
// results are already cached are served without re-simulation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vbmo/internal/exitcode"
	"vbmo/internal/farm"
	"vbmo/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitcode.Err)
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "submit":
		submit(os.Args[2:])
	case "status":
		status(os.Args[2:])
	case "results":
		results(os.Args[2:])
	case "metrics":
		metrics(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "vbrfarm: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(exitcode.Err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vbrfarm serve   -dir DIR [-addr HOST:PORT] [-shards N] [-trace FILE]
  vbrfarm submit  -addr URL (-spec FILE | -spec -) [-fresh] [-wait] [-timeout D]
  vbrfarm status  -addr URL -id JOBID [-wait] [-timeout D]
  vbrfarm results -addr URL -id JOBID [-o FILE]
  vbrfarm metrics -addr URL`)
}

// fail prints the error and exits through the audited exit-code table.
func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(exitcode.Err)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dir       = fs.String("dir", "farm.state", "state directory (result cache + jobs journal)")
		addr      = fs.String("addr", "127.0.0.1:8373", "listen address")
		shards    = fs.Int("shards", runtime.GOMAXPROCS(0), "local worker pool shard count")
		local     = fs.Bool("local", true, "execute cells on the local pool too (false = pure coordinator; cells wait for vbrworker processes)")
		leaseTTL  = fs.Duration("lease-ttl", 10*time.Second, "worker lease TTL; an unheartbeated checkout re-queues after this")
		sweep     = fs.Duration("sweep", 0, "lease expiry sweep interval (default lease-ttl/4)")
		longPoll  = fs.Duration("longpoll", 30*time.Second, "max duration of one ?wait=1 status long-poll")
		traceFile = fs.String("trace", "", "write farm lifecycle events as JSONL to this file")
	)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return a non-nil error

	var tr *trace.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		sink := trace.NewJSONLSink(f)
		tr = trace.New(sink)
		defer tr.Flush()
	}
	s, err := farm.NewServerWith(*dir, farm.ServerOptions{
		Shards:        *shards,
		NoLocalExec:   !*local,
		LeaseTTL:      *leaseTTL,
		SweepInterval: *sweep,
		LongPollMax:   *longPoll,
	}, tr)
	if err != nil {
		fail(err)
	}
	bound, err := s.Start(*addr)
	if err != nil {
		s.Stop()
		fail(err)
	}
	fmt.Printf("vbrfarm: serving on %s (state %s, %d shards)\n", bound, *dir, *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	dropped := s.Stop()
	fmt.Printf("vbrfarm: stopped (%d queued cells dropped; journal will recover them)\n", dropped)
}

// readSpec loads a job spec from a file or stdin ("-").
func readSpec(path string) (farm.JobSpec, error) {
	var spec farm.JobSpec
	if path == "" {
		return spec, fmt.Errorf("vbrfarm: -spec is required")
	}
	var raw []byte
	var err error
	if path == "-" {
		raw, err = os.ReadFile("/dev/stdin")
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, fmt.Errorf("vbrfarm: bad job spec %s: %w", path, err)
	}
	return spec, nil
}

func submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8373", "farm server base URL")
		specPath = fs.String("spec", "", "job spec JSON file (- for stdin)")
		fresh    = fs.Bool("fresh", false, "re-run a completed job through the cache")
		wait     = fs.Bool("wait", false, "block until the job finishes")
		timeout  = fs.Duration("timeout", 10*time.Minute, "wait deadline with -wait")
	)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return a non-nil error
	spec, err := readSpec(*specPath)
	if err != nil {
		fail(err)
	}
	c := &farm.Client{Base: *addr}
	st, err := c.Submit(spec, *fresh)
	if err != nil {
		fail(err)
	}
	if *wait {
		if st, err = c.Wait(st.ID, *timeout); err != nil {
			fail(err)
		}
	}
	printJSON(st)
	if st.State == farm.StateFailed {
		os.Exit(exitcode.Err)
	}
}

func status(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8373", "farm server base URL")
		id      = fs.String("id", "", "job ID")
		wait    = fs.Bool("wait", false, "block until the job finishes")
		timeout = fs.Duration("timeout", 10*time.Minute, "wait deadline with -wait")
	)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return a non-nil error
	if *id == "" {
		fail(fmt.Errorf("vbrfarm: -id is required"))
	}
	c := &farm.Client{Base: *addr}
	var st farm.JobStatus
	var err error
	if *wait {
		st, err = c.Wait(*id, *timeout)
	} else {
		st, err = c.Status(*id)
	}
	if err != nil {
		fail(err)
	}
	printJSON(st)
	if st.State == farm.StateFailed {
		os.Exit(exitcode.Err)
	}
}

func results(args []string) {
	fs := flag.NewFlagSet("results", flag.ExitOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:8373", "farm server base URL")
		id   = fs.String("id", "", "job ID")
		out  = fs.String("o", "", "write results JSON here (default stdout)")
	)
	_ = fs.Parse(args) // ExitOnError: Parse cannot return a non-nil error
	if *id == "" {
		fail(fmt.Errorf("vbrfarm: -id is required"))
	}
	c := &farm.Client{Base: *addr}
	res, err := c.Results(*id)
	if err != nil {
		fail(err)
	}
	if *out == "" {
		printJSON(res)
		return
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("vbrfarm: wrote %s (digest %s)\n", *out, res.Digest)
}

func metrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8373", "farm server base URL")
	_ = fs.Parse(args) // ExitOnError: Parse cannot return a non-nil error
	c := &farm.Client{Base: *addr}
	snap, err := c.Metrics()
	if err != nil {
		fail(err)
	}
	printJSON(snap)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}
