// Command camtable prints the paper's hardware-model tables: the Table 1
// survey of commercial load-queue port requirements and the Table 2 CAM
// search latency/energy grid (CACTI 3.2, 0.09 micron), plus the fitted
// analytical model's error and the §2.2 cycle-time argument.
package main

import (
	"flag"
	"fmt"

	"vbmo/internal/energy"
)

func main() {
	table := flag.Int("table", 0, "1 | 2 (0 = both)")
	ghz := flag.Float64("ghz", 5.0, "clock frequency for the fits-in-cycle check")
	flag.Parse()

	if *table == 0 || *table == 1 {
		fmt.Print(energy.FormatTable1())
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		fmt.Print(energy.FormatTable2())
		m := energy.DefaultCAMModel()
		latErr, enErr := m.ModelError()
		fmt.Printf("\nfitted model mean error: latency %.1f%%, energy %.1f%%\n", latErr*100, enErr*100)
		cycle := 1.0 / *ghz
		fmt.Printf("\nat %.1f GHz the cycle is %.3f ns; single-cycle searchable configurations:\n", *ghz, cycle)
		any := false
		for _, n := range energy.Table2Entries {
			for _, p := range energy.Table2Ports {
				if m.FitsInCycle(n, p, *ghz) {
					fmt.Printf("  %d entries %s (%.2f ns)\n", n, p, m.Lookup(n, p).LatencyNS)
					any = true
				}
			}
		}
		if !any {
			fmt.Println("  none — the motivating observation of §2.2/§5.2")
		}
	}
}
