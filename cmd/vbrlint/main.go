// Command vbrlint runs the project's static-analysis suite: nine
// analyzers that turn the simulator's runtime and documentation
// invariants into compile-time checks. Five are syntactic
// (determinism, hotalloc, nilguard, exitcode, doccheck — bit-identical
// fixed-seed outputs, the allocation-free cycle loop, zero-cost
// disabled hooks, the CLI exit contract, a real package comment on
// every package) and four are flow-aware, built on the CFG/dataflow
// engine in internal/analysis/flow (lockorder, condguard, goleak,
// errflow — mutex ordering and all-paths release, the sync.Cond
// protocol, goroutine/timer lifetimes, and never-dropped error
// results in the concurrent packages). Stdlib-only: the module stays
// dependency-free.
//
//	vbrlint ./...                            # lint the whole module
//	vbrlint ./internal/pipeline              # one package
//	vbrlint -json ./...                      # machine-readable findings
//	vbrlint -analyzers lockorder,goleak ./...  # run a subset
//
// Findings go to stdout as file:line:col: analyzer: message (or a JSON
// array with -json). The exit status is exitcode.OK when clean and
// exitcode.Err on any finding, load failure, or usage error, so CI can
// gate on it directly. Suppress a deliberate exception with
// "//vbr:allow <analyzer> <reason>" on or above the offending line;
// unused directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vbmo/internal/analysis"
	"vbmo/internal/exitcode"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		rootDir = flag.String("root", "", "module root (default: walk up from the working directory to go.mod)")
		subset  = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all nine)")
	)
	flag.Parse()

	analyzers, err := analysis.Select(*subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbrlint:", err)
		os.Exit(exitcode.Err)
	}

	root := *rootDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := analysis.RunAnalyzers(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitcode.Err)
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "vbrlint: %d finding(s)\n", len(diags))
		}
		os.Exit(exitcode.Err)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vbrlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}
