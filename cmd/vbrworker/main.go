// Command vbrworker is a farm worker process: it pulls batched sweep
// cells from a vbrfarm server over the lease/heartbeat/complete HTTP
// protocol, executes them through the same deterministic simulation
// paths the server's local pool uses, and uploads each result before
// acknowledging. Workers are disposable by design — they hold no
// durable state, heartbeat while they compute, and a killed or wedged
// worker simply lets its leases expire so the server re-queues the
// cells. Run one worker per spare machine or container:
//
//	vbrworker -addr http://farmhost:8373 -id worker-a -batch 8
//
// The worker refuses to serve a farm built from different code (the
// content-addressed cache keys embed the code-version fingerprint), and
// survives server restarts and transient partitions with bounded
// exponential backoff.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vbmo/internal/exitcode"
	"vbmo/internal/farm"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8373", "farm server base URL")
		id        = flag.String("id", "", "worker identity (default worker-<hostname>-<pid>)")
		batch     = flag.Int("batch", 4, "cells to check out per lease round trip")
		heartbeat = flag.Duration("heartbeat", 0, "lease renewal interval (default lease TTL / 3)")
		poll      = flag.Duration("poll", 250*time.Millisecond, "idle poll interval (backs off exponentially)")
		maxPoll   = flag.Duration("max-poll", 5*time.Second, "idle/unavailable backoff cap")
		idleExit  = flag.Duration("idle-exit", 0, "exit cleanly after this long without work (0 = run until signalled)")
		execDelay = flag.Duration("exec-delay", 0, "pause before each cell (chaos/test knob; keep 0 in production)")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "unknown"
		}
		*id = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
	}

	w := &farm.Worker{
		Client:    &farm.Client{Base: *addr},
		ID:        *id,
		Batch:     *batch,
		Heartbeat: *heartbeat,
		Poll:      *poll,
		MaxPoll:   *maxPoll,
		MaxIdle:   *idleExit,
		ExecDelay: *execDelay,
	}
	if !*quiet {
		w.Logf = log.New(os.Stderr, "", log.LstdFlags).Printf
	}

	// SIGINT/SIGTERM cancel the context; Run returns nil and any cells
	// still leased simply expire back to the server.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitcode.Err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vbrworker %s: done (%d cells completed)\n", *id, w.Completed())
	}
	os.Exit(exitcode.OK)
}
