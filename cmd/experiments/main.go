// Command experiments regenerates the paper's tables and figures.
//
//	experiments -experiment all          # everything
//	experiments -experiment fig5         # one figure
//	experiments -quick                   # reduced budgets
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vbmo/internal/exitcode"
	"vbmo/internal/experiments"
)

func main() {
	var (
		which       = flag.String("experiment", "all", "all | tables | fig5 | fig6 | fig7 | fig8 | squash | power | relatedwork | snapshots | litmus | faults | bench")
		quick       = flag.Bool("quick", false, "reduced instruction budgets and core counts")
		cores       = flag.Int("cores", 0, "override MP core count")
		uniInstr    = flag.Uint64("uni", 0, "override uniprocessor instructions")
		mpInstr     = flag.Uint64("mp", 0, "override per-core MP instructions")
		samples     = flag.Int("samples", 0, "override MP sample count")
		works       = flag.String("workloads", "", "comma-separated workload subset")
		parallel    = flag.Bool("parallel", true, "run data points in parallel")
		workers     = flag.Int("workers", 0, "worker pool size when -parallel (0 = one per GOMAXPROCS)")
		resume      = flag.String("resume", "", "JSONL checkpoint journal for the §5.1 matrix; completed cells are replayed, not re-run")
		retries     = flag.Int("retries", 0, "re-attempts for a failed matrix cell")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline for the §5.1 matrix (0 = none; nondeterministic)")

		benchOut   = flag.String("bench-out", "BENCH_3.json", "bench experiment: write the JSON report here (empty = skip)")
		snapDir    = flag.String("snapshot-dir", "", "directory for snapshots experiment JSONL output (empty = print only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *cores > 0 {
		cfg.MPCores = *cores
	}
	if *uniInstr > 0 {
		cfg.UniInstr = *uniInstr
	}
	if *mpInstr > 0 {
		cfg.MPInstr = *mpInstr
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *works != "" {
		cfg.Workloads = strings.Split(*works, ",")
	}
	cfg.Parallel = *parallel
	cfg.Workers = *workers
	cfg.Checkpoint = *resume
	cfg.Retries = *retries
	cfg.CellTimeout = *cellTimeout

	w := os.Stdout
	start := time.Now()
	// failed accumulates every soundness or infrastructure failure; the
	// run always reports everything it measured, then exits nonzero if
	// anything went wrong (graceful degradation, audited exit path).
	failed := false

	needMatrix := map[string]bool{"all": true, "fig5": true, "fig6": true, "fig7": true, "squash": true, "power": true}
	var m *experiments.Matrix
	if needMatrix[*which] {
		fmt.Fprintf(w, "running §5.1 matrix: %d machines × workloads (uni %d instr, %d-way MP %d instr × %d samples)...\n",
			len(experiments.MachineNames), cfg.UniInstr, cfg.MPCores, cfg.MPInstr, cfg.Samples)
		var err error
		m, err = experiments.Run(cfg, experiments.MachineNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		if m.Resumed > 0 {
			fmt.Fprintf(w, "resumed %d cell(s) from %s\n", m.Resumed, cfg.Checkpoint)
		}
		for _, f := range m.Failed {
			fmt.Fprintf(os.Stderr, "FAILED %s\n", f)
			failed = true
		}
	}

	switch *which {
	case "all":
		experiments.Tables(w)
		experiments.Figure5(w, m)
		experiments.Figure6(w, m)
		experiments.Figure7(w, m)
		experiments.SquashStats(w, m)
		experiments.Power(w, m)
		if err := experiments.Figure8(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
		experiments.RelatedWork(w, cfg)
		if sum := experiments.LitmusMatrix(w, cfg); !sum.SoundOK || !sum.UnsoundCaught {
			fmt.Fprintln(os.Stderr, "litmus battery failed")
			failed = true
		}
		if sum := experiments.FaultMatrix(w, cfg); !sum.OK() {
			fmt.Fprintln(os.Stderr, "fault-injection matrix failed")
			failed = true
		}
	case "tables":
		experiments.Tables(w)
	case "fig5":
		experiments.Figure5(w, m)
	case "fig6":
		experiments.Figure6(w, m)
	case "fig7":
		experiments.Figure7(w, m)
	case "fig8":
		if err := experiments.Figure8(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	case "squash":
		experiments.SquashStats(w, m)
	case "power":
		experiments.Power(w, m)
	case "relatedwork":
		experiments.RelatedWork(w, cfg)
	case "snapshots":
		if err := experiments.Snapshots(w, cfg, *snapDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	case "litmus":
		if sum := experiments.LitmusMatrix(w, cfg); !sum.SoundOK || !sum.UnsoundCaught {
			failed = true
		}
	case "faults":
		if sum := experiments.FaultMatrix(w, cfg); !sum.OK() {
			failed = true
		}
	case "bench":
		rep := experiments.Bench(w, cfg)
		if *benchOut != "" {
			if err := experiments.WriteBenchReport(*benchOut, rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(exitcode.Err)
			}
			fmt.Fprintf(w, "wrote %s\n", *benchOut)
		}
		if !rep.AllPass {
			fmt.Fprintln(os.Stderr, "bench: regression gate failure (see gates above)")
			failed = true
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(exitcode.Err)
	}
	fmt.Fprintf(w, "\n[%s elapsed]\n", time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(exitcode.Err)
	}
}
