// Command litmus runs the memory-ordering litmus battery: every test is
// compiled to a multiprocessor program, swept across machine
// configurations × seeds × timing perturbations, and each committed
// outcome is classified against an exhaustive sequential-consistency
// oracle and cross-checked with the constraint-graph checker.
//
//	litmus -all                      # full battery × standard configs
//	litmus -test SB -runs 2000       # one test, deeper sweep
//	litmus -list                     # battery index
//	litmus -all -json                # machine-readable verdict matrix
//
// The exit status is nonzero when a sound configuration admitted an
// SC-forbidden outcome (or cyclic constraint graph), when the
// deliberately unsound NUS-alone configuration escaped every test, when
// any sweep cell failed outright (panic/timeout), or — under -fault
// with filter-breaking kinds — when the checker failed to flag a single
// sabotaged run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vbmo/internal/config"
	"vbmo/internal/exitcode"
	"vbmo/internal/fault"
	"vbmo/internal/litmus"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run the full battery on the standard configurations")
		testName = flag.String("test", "", "run one battery test by name (see -list)")
		cfgName  = flag.String("config", "", "restrict the sweep to one configuration")
		list     = flag.Bool("list", false, "list battery tests and configurations, then exit")
		runs     = flag.Int("runs", 1000, "perturbed executions per (test, config) cell")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		seed     = flag.Uint64("seed", 1, "base seed for the perturbation streams")
		jsonOut  = flag.Bool("json", false, "emit the verdict matrix as JSON instead of text")
		oracle   = flag.Bool("oracle", false, "also print each test's SC-allowed outcome set")
		cores    = flag.Int("cores", 0, "run every test on an SMP this wide, extra cores spinning (0 = each test's natural thread count)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress lines")

		faultKinds  = flag.String("fault", "", "inject faults: comma-separated kinds (see internal/fault) or \"all\" (empty = off)")
		faultRate   = flag.Float64("fault-rate", 1.0, "per-opportunity fault probability (litmus programs are short; default every opportunity)")
		faultSeed   = flag.Uint64("fault-seed", 0, "fault RNG seed (0 = derive from -seed)")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline (0 = none; nondeterministic)")
		retries     = flag.Int("retries", 0, "re-attempts for a failed sweep cell")
		resume      = flag.String("resume", "", "JSONL checkpoint journal; existing completed cells are replayed, not re-run")
	)
	flag.Parse()

	if *list {
		fmt.Println("battery tests:")
		for _, t := range litmus.Battery() {
			fmt.Printf("  %-10s %s\n", t.Name, t.Doc)
		}
		fmt.Println("configurations:")
		for _, c := range litmus.Configs() {
			kind := "sound"
			if !c.Sound {
				kind = "UNSOUND"
			}
			fmt.Printf("  %-10s %-8s %s\n", c.Name, kind, c.Machine.Name)
		}
		return
	}

	var tests []*litmus.Test
	switch {
	case *testName != "":
		t, ok := litmus.ByName(*testName)
		if !ok {
			names := make([]string, 0, len(litmus.Battery()))
			for _, t := range litmus.Battery() {
				names = append(names, t.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown test %q; valid tests: %s\n",
				*testName, strings.Join(names, ", "))
			os.Exit(exitcode.Err)
		}
		tests = []*litmus.Test{t}
	case *all:
		tests = litmus.Battery()
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -test NAME, or -list")
		os.Exit(exitcode.Err)
	}

	var cfgs []litmus.Config
	if *cfgName != "" {
		c, ok := litmus.ConfigByName(*cfgName)
		if !ok {
			names := make([]string, 0, len(litmus.Configs()))
			for _, c := range litmus.Configs() {
				names = append(names, c.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown config %q; valid configs: %s\n",
				*cfgName, strings.Join(names, ", "))
			os.Exit(exitcode.Err)
		}
		cfgs = []litmus.Config{c}
	} else {
		cfgs = litmus.Configs()
	}

	if *oracle && !*jsonOut {
		for _, t := range tests {
			as := litmus.Allowed(t)
			fmt.Printf("%s — %s\n", t.Name, t.Doc)
			for _, key := range as.Keys() {
				fmt.Printf("  allowed: %s\n", key)
			}
		}
	}

	var fc *fault.Config
	if *faultKinds != "" {
		ks, err := fault.ParseKinds(*faultKinds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed ^ 0x9e3779b97f4a7c15
		}
		fc = &fault.Config{Kinds: ks, Rate: *faultRate, Seed: fseed}
	}

	if *cores < 0 || *cores > config.MaxCores {
		fmt.Fprintf(os.Stderr, "-cores must be between 0 and %d\n", config.MaxCores)
		os.Exit(exitcode.Err)
	}
	opts := litmus.SweepOptions{
		Tests: tests, Configs: cfgs,
		Runs: *runs, Workers: *workers, Seed: *seed, Cores: *cores,
		Fault: fc, Checkpoint: *resume, Retries: *retries, CellTimeout: *cellTimeout,
	}
	if !*jsonOut && !*quiet {
		opts.Progress = func(done, total int, v litmus.Verdict) {
			status := "ok"
			if v.Error != "" {
				status = "ERROR"
			} else if v.Sound && !v.Pass() {
				status = "FAIL"
			} else if !v.Sound && v.Caught() {
				status = "caught"
			}
			line := fmt.Sprintf("[%3d/%3d] %-10s × %-10s %d runs, %d outcomes, forbidden=%d cycles=%d incomplete=%d",
				done, total, v.Test, v.Config, v.Runs, len(v.Histogram),
				v.Forbidden, v.Cycles, v.Incomplete)
			if v.FaultInjected > 0 || v.FaultDropped > 0 || v.FaultSuppressed > 0 {
				line += fmt.Sprintf(" faults=%d det=%d miss=%d drop=%d supp=%d",
					v.FaultInjected, v.FaultDetected, v.FaultMissed,
					v.FaultDropped, v.FaultSuppressed)
			}
			fmt.Printf("%s  %s\n", line, status)
		}
	}

	start := time.Now()
	verdicts, err := litmus.Sweep(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitcode.Err)
	}
	sum := litmus.Summarize(verdicts)
	elapsed := time.Since(start)

	if *jsonOut {
		out := struct {
			Runs     int              `json:"runs"`
			Seed     uint64           `json:"seed"`
			Elapsed  float64          `json:"elapsed_sec"`
			Verdicts []litmus.Verdict `json:"verdicts"`
			Summary  litmus.Summary   `json:"summary"`
		}{*runs, *seed, elapsed.Seconds(), verdicts, sum}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitcode.Err)
		}
	} else {
		printMatrix(verdicts, tests, cfgs)
		fmt.Printf("\nsound configurations clean: %v", sum.SoundOK)
		if len(sum.FailedCells) > 0 {
			fmt.Printf("  (failed: %s)", strings.Join(sum.FailedCells, ", "))
		}
		fmt.Println()
		hasUnsound := false
		for _, c := range cfgs {
			if !c.Sound {
				hasUnsound = true
			}
		}
		if hasUnsound {
			fmt.Printf("unsound configuration caught: %v", sum.UnsoundCaught)
			if len(sum.CaughtBy) > 0 {
				fmt.Printf("  (by: %s)", strings.Join(sum.CaughtBy, ", "))
			}
			fmt.Println()
		}
		if fc != nil {
			var inj, det, miss, drop, supp uint64
			for _, v := range verdicts {
				inj += v.FaultInjected
				det += v.FaultDetected
				miss += v.FaultMissed
				drop += v.FaultDropped
				supp += v.FaultSuppressed
			}
			fmt.Printf("faults: injected=%d detected=%d missed=%d dropped=%d suppressed=%d\n",
				inj, det, miss, drop, supp)
		}
		fmt.Printf("[%s elapsed]\n", elapsed.Round(time.Millisecond))
	}

	// Exit-path audit: every failure mode maps to a nonzero exit.
	failed := false
	// Infrastructure failures (panic, timeout, retries exhausted) are
	// reported per-cell and fail the battery even when every completed
	// cell looks clean.
	if len(sum.Errors) > 0 {
		for _, e := range sum.Errors {
			fmt.Fprintf(os.Stderr, "ERROR %s\n", e)
		}
		failed = true
	}
	if fc.Enabled() && faultBreaksSoundness(fc.Kinds) {
		// Filter-breaking fault injection inverts the contract: the
		// sound configurations are being sabotaged, so success means the
		// checker FLAGGED sabotaged runs (forbidden outcome or cycle) —
		// a fully "clean" matrix means the corruption escaped.
		caught := 0
		for _, v := range verdicts {
			if v.Error == "" && v.Sound {
				caught += v.Forbidden + v.Cycles
			}
		}
		if caught == 0 {
			fmt.Fprintln(os.Stderr, "FAULT ESCAPE: filter-breaking fault injection produced no flagged run; the checker missed the sabotage")
			failed = true
		}
	} else if fc == nil {
		// A sound-config violation always fails. The catch requirement
		// on the unsound configuration is a battery-level contract: a
		// single test legitimately escapes (MP never catches NUS-alone),
		// so it is only enforced when the full battery ran.
		if !sum.SoundOK || (*all && *testName == "" && !sum.UnsoundCaught) {
			failed = true
		}
	}
	if failed {
		os.Exit(exitcode.Err)
	}
}

// faultBreaksSoundness reports whether any injected kind undermines the
// replay filters' soundness argument (suppressed signals, lost
// messages), as opposed to value corruptions replay is expected to
// repair or delays the windowing is expected to absorb.
func faultBreaksSoundness(kinds []fault.Kind) bool {
	for _, k := range kinds {
		switch k {
		case fault.DropSnoop, fault.DropFill,
			fault.SuppressNUS, fault.SuppressWindow, fault.SuppressRule3:
			return true
		}
	}
	return false
}

// printMatrix renders the verdict matrix as a test × config table. A
// sound cell shows ok/FAIL; the unsound column shows how many runs the
// checker caught (caught=N) or "escaped" when none did.
func printMatrix(vs []litmus.Verdict, tests []*litmus.Test, cfgs []litmus.Config) {
	byCell := make(map[string]litmus.Verdict, len(vs))
	for _, v := range vs {
		byCell[v.Test+"/"+v.Config] = v
	}
	fmt.Printf("\n%-10s", "")
	for _, c := range cfgs {
		fmt.Printf(" %-12s", c.Name)
	}
	fmt.Println()
	for _, t := range tests {
		fmt.Printf("%-10s", t.Name)
		for _, c := range cfgs {
			v := byCell[t.Name+"/"+c.Name]
			cell := "ok"
			switch {
			case v.Sound && !v.Pass():
				cell = fmt.Sprintf("FAIL(%d)", v.Forbidden+v.Cycles+v.Incomplete)
			case !v.Sound && v.Caught():
				cell = fmt.Sprintf("caught=%d", v.Forbidden+v.Cycles)
			case !v.Sound:
				cell = "escaped"
			}
			fmt.Printf(" %-12s", cell)
		}
		fmt.Println()
	}
}
