// Command litmus runs the memory-ordering litmus battery: every test is
// compiled to a multiprocessor program, swept across machine
// configurations × seeds × timing perturbations, and each committed
// outcome is classified against an exhaustive sequential-consistency
// oracle and cross-checked with the constraint-graph checker.
//
//	litmus -all                      # full battery × standard configs
//	litmus -test SB -runs 2000       # one test, deeper sweep
//	litmus -list                     # battery index
//	litmus -all -json                # machine-readable verdict matrix
//
// The exit status is nonzero when a sound configuration admitted an
// SC-forbidden outcome (or cyclic constraint graph), or when the
// deliberately unsound NUS-alone configuration escaped every test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vbmo/internal/litmus"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run the full battery on the standard configurations")
		testName = flag.String("test", "", "run one battery test by name (see -list)")
		cfgName  = flag.String("config", "", "restrict the sweep to one configuration")
		list     = flag.Bool("list", false, "list battery tests and configurations, then exit")
		runs     = flag.Int("runs", 1000, "perturbed executions per (test, config) cell")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		seed     = flag.Uint64("seed", 1, "base seed for the perturbation streams")
		jsonOut  = flag.Bool("json", false, "emit the verdict matrix as JSON instead of text")
		oracle   = flag.Bool("oracle", false, "also print each test's SC-allowed outcome set")
		quiet    = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	if *list {
		fmt.Println("battery tests:")
		for _, t := range litmus.Battery() {
			fmt.Printf("  %-10s %s\n", t.Name, t.Doc)
		}
		fmt.Println("configurations:")
		for _, c := range litmus.Configs() {
			kind := "sound"
			if !c.Sound {
				kind = "UNSOUND"
			}
			fmt.Printf("  %-10s %-8s %s\n", c.Name, kind, c.Machine.Name)
		}
		return
	}

	var tests []*litmus.Test
	switch {
	case *testName != "":
		t, ok := litmus.ByName(*testName)
		if !ok {
			names := make([]string, 0, len(litmus.Battery()))
			for _, t := range litmus.Battery() {
				names = append(names, t.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown test %q; valid tests: %s\n",
				*testName, strings.Join(names, ", "))
			os.Exit(1)
		}
		tests = []*litmus.Test{t}
	case *all:
		tests = litmus.Battery()
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -all, -test NAME, or -list")
		os.Exit(1)
	}

	var cfgs []litmus.Config
	if *cfgName != "" {
		c, ok := litmus.ConfigByName(*cfgName)
		if !ok {
			names := make([]string, 0, len(litmus.Configs()))
			for _, c := range litmus.Configs() {
				names = append(names, c.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown config %q; valid configs: %s\n",
				*cfgName, strings.Join(names, ", "))
			os.Exit(1)
		}
		cfgs = []litmus.Config{c}
	} else {
		cfgs = litmus.Configs()
	}

	if *oracle && !*jsonOut {
		for _, t := range tests {
			as := litmus.Allowed(t)
			fmt.Printf("%s — %s\n", t.Name, t.Doc)
			for _, key := range as.Keys() {
				fmt.Printf("  allowed: %s\n", key)
			}
		}
	}

	opts := litmus.SweepOptions{
		Tests: tests, Configs: cfgs,
		Runs: *runs, Workers: *workers, Seed: *seed,
	}
	if !*jsonOut && !*quiet {
		opts.Progress = func(done, total int, v litmus.Verdict) {
			status := "ok"
			if v.Sound && !v.Pass() {
				status = "FAIL"
			} else if !v.Sound && v.Caught() {
				status = "caught"
			}
			fmt.Printf("[%3d/%3d] %-10s × %-10s %d runs, %d outcomes, forbidden=%d cycles=%d incomplete=%d  %s\n",
				done, total, v.Test, v.Config, v.Runs, len(v.Histogram),
				v.Forbidden, v.Cycles, v.Incomplete, status)
		}
	}

	start := time.Now()
	verdicts := litmus.Sweep(opts)
	sum := litmus.Summarize(verdicts)
	elapsed := time.Since(start)

	if *jsonOut {
		out := struct {
			Runs     int              `json:"runs"`
			Seed     uint64           `json:"seed"`
			Elapsed  float64          `json:"elapsed_sec"`
			Verdicts []litmus.Verdict `json:"verdicts"`
			Summary  litmus.Summary   `json:"summary"`
		}{*runs, *seed, elapsed.Seconds(), verdicts, sum}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		printMatrix(verdicts, tests, cfgs)
		fmt.Printf("\nsound configurations clean: %v", sum.SoundOK)
		if len(sum.FailedCells) > 0 {
			fmt.Printf("  (failed: %s)", strings.Join(sum.FailedCells, ", "))
		}
		fmt.Println()
		hasUnsound := false
		for _, c := range cfgs {
			if !c.Sound {
				hasUnsound = true
			}
		}
		if hasUnsound {
			fmt.Printf("unsound configuration caught: %v", sum.UnsoundCaught)
			if len(sum.CaughtBy) > 0 {
				fmt.Printf("  (by: %s)", strings.Join(sum.CaughtBy, ", "))
			}
			fmt.Println()
		}
		fmt.Printf("[%s elapsed]\n", elapsed.Round(time.Millisecond))
	}

	// A sound-config violation always fails. The catch requirement on
	// the unsound configuration is a battery-level contract: a single
	// test legitimately escapes (MP never catches NUS-alone), so it is
	// only enforced when the full battery ran.
	if !sum.SoundOK || (*all && *testName == "" && !sum.UnsoundCaught) {
		os.Exit(1)
	}
}

// printMatrix renders the verdict matrix as a test × config table. A
// sound cell shows ok/FAIL; the unsound column shows how many runs the
// checker caught (caught=N) or "escaped" when none did.
func printMatrix(vs []litmus.Verdict, tests []*litmus.Test, cfgs []litmus.Config) {
	byCell := make(map[string]litmus.Verdict, len(vs))
	for _, v := range vs {
		byCell[v.Test+"/"+v.Config] = v
	}
	fmt.Printf("\n%-10s", "")
	for _, c := range cfgs {
		fmt.Printf(" %-12s", c.Name)
	}
	fmt.Println()
	for _, t := range tests {
		fmt.Printf("%-10s", t.Name)
		for _, c := range cfgs {
			v := byCell[t.Name+"/"+c.Name]
			cell := "ok"
			switch {
			case v.Sound && !v.Pass():
				cell = fmt.Sprintf("FAIL(%d)", v.Forbidden+v.Cycles+v.Incomplete)
			case !v.Sound && v.Caught():
				cell = fmt.Sprintf("caught=%d", v.Forbidden+v.Cycles)
			case !v.Sound:
				cell = "escaped"
			}
			fmt.Printf(" %-12s", cell)
		}
		fmt.Println()
	}
}
